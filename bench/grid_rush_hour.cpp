// Exhibit A12 (NREN extension): grid-scale data federation rush hour.
//
// nren_rush_hour times ~20 simultaneous pulls; this harness scales the
// question three orders of magnitude: a multi-region data federation
// serving around a million replica transfers through a daily rush hour,
// on the incremental fluid flow engine. Two replica-selection policies
// run as sweep points — widest path (best static pipe) and least loaded
// (spread the sources) — and the table compares cache behaviour,
// slowdown, and engine work.
//
// Determinism: each policy is an independent sweep point with its own
// Federation/engine/workload (same seed), run under parallel_for's
// static partition; registries merge in policy order, so stdout and
// --json are byte-identical at any --jobs value.
#include <cstdio>
#include <vector>

#include "grid/grid_sim.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace hpccsim;
using namespace hpccsim::grid;

struct PolicyRun {
  Placement policy = Placement::WidestPath;
  GridSimulator::Stats stats;
  wan::FlowEngine::Stats engine;
  sim::Time end;
  obs::Registry registry;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("grid_rush_hour",
                 "grid data federation under a diurnal rush hour");
  args.add_option("regions", "federation regions", "4");
  args.add_option("leaves", "leaves per region", "6");
  args.add_option("days", "simulated days", "1.25");
  args.add_option("requests-per-day", "mean requests per day", "600000");
  args.add_option("datasets", "dataset universe size", "60000");
  args.add_option("median-mb", "median dataset size (MB)", "3.5");
  args.add_option("amplitude", "rush-hour rate amplitude", "1.2");
  args.add_option("seed", "workload seed", "1992");
  args.add_jobs_option();
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  FederationConfig fc;
  fc.regions = static_cast<std::int32_t>(args.integer("regions"));
  fc.leaves_per_region = static_cast<std::int32_t>(args.integer("leaves"));

  WorkloadConfig wc;
  wc.seed = static_cast<std::uint64_t>(args.integer("seed"));
  wc.days = args.real("days");
  wc.requests_per_day = args.real("requests-per-day");
  wc.dataset_count = static_cast<std::int32_t>(args.integer("datasets"));
  wc.median_bytes = args.real("median-mb") * 1e6;
  wc.rush_amplitude = args.real("amplitude");

  // Constructed before the sweep: wall_time_s runs construction->write.
  obs::BenchMetrics bm("grid_rush_hour");
  bm.config("regions", args.integer("regions"));
  bm.config("leaves", args.integer("leaves"));
  bm.config("days", args.str("days"));
  bm.config("requests_per_day", args.str("requests-per-day"));
  bm.config("datasets", args.integer("datasets"));
  bm.config("seed", args.integer("seed"));
  bm.set_threads(args.jobs());

  const std::vector<Placement> policies = {Placement::WidestPath,
                                           Placement::LeastLoaded};
  std::vector<PolicyRun> runs(policies.size());
  parallel_for(policies.size(), args.jobs(), [&](std::size_t i) {
    PolicyRun& r = runs[i];
    r.policy = policies[i];
    const Federation fed(fc);
    WorkloadGenerator wl(wc, fed);
    GridSimulator sim(fed, r.policy);
    sim.run(wl);
    r.stats = sim.stats();
    r.engine = sim.engine_stats();
    r.end = sim.now();
    sim.export_counters(r.registry);
  });

  std::printf("== A12: %lld-site federation, ~%.1fk requests/day, "
              "rush amplitude %.1f ==\n",
              static_cast<long long>(fc.regions) * (fc.leaves_per_region + 1),
              wc.requests_per_day / 1000.0, wc.rush_amplitude);

  Table t({"policy", "requests", "hits", "coalesced", "flows", "GB moved",
           "mean slowdown", "active peak", "recomputes/flow"});
  std::int64_t flows_total = 0, requests_total = 0;
  obs::Registry merged;
  for (const PolicyRun& r : runs) {
    const auto& s = r.stats;
    flows_total += s.flows_completed;
    requests_total += s.requests;
    bm.add_sim_time(r.end);
    t.add_row({placement_name(r.policy), Table::integer(s.requests),
               Table::integer(s.cache_hits), Table::integer(s.coalesced),
               Table::integer(s.flows_completed),
               Table::num(static_cast<double>(s.bytes_moved) / 1e9, 1),
               Table::num(s.mean_slowdown(), 2),
               Table::integer(r.engine.active_peak),
               Table::num(static_cast<double>(r.engine.recomputes) /
                              static_cast<double>(s.flows_completed),
                          2)});
    merged.merge(r.registry);
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: least-loaded drains archives evenly but rides "
              "narrower pipes, so its slowdown sits above widest-path; "
              "caching pushes both policies' hit rates up as the day "
              "wears on\n");

  bm.metric("flows_total", flows_total);
  bm.metric("requests_total", requests_total);
  bm.metric("widest_mean_slowdown", runs[0].stats.mean_slowdown());
  bm.metric("least_loaded_mean_slowdown", runs[1].stats.mean_slowdown());
  bm.attach_counters(merged);
  bm.write_file(args.json_path());
  return 0;
}

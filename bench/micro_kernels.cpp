// Micro-benchmarks (google-benchmark) for the hot host-side paths: the
// local BLAS kernels that numeric mode executes, the reference LU, the
// event engine, XY routing, and the flit router step. These measure the
// *simulator's* speed on the host, not simulated time.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/task.hpp"
#include "linalg/blas.hpp"
#include "linalg/distlu.hpp"
#include "linalg/matrix.hpp"
#include "mesh/analytical.hpp"
#include "mesh/flit.hpp"
#include "nx/machine_runtime.hpp"
#include "obs/metrics.hpp"
#include "proc/machine.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Counting allocator so the modeled-path benchmarks can report
// allocations per operation (docs/PERF.md "Modeled-mode hot path").
// Both halves are replaced together; GCC's mismatch heuristic only sees
// the free() side.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace hpccsim;
using linalg::Index;
using linalg::Matrix;

void BM_dgemm_minus(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c = Matrix::random(n, n, rng);
  for (auto _ : state) {
    linalg::dgemm_minus(n, n, n, a.data().data(), n, b.data().data(), n,
                        c.data().data(), n);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_dgemm_minus)->Arg(64)->Arg(128)->Arg(256);

void BM_dgetrf(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  const Matrix a = Matrix::random(n, n, rng);
  std::vector<Index> piv(static_cast<std::size_t>(n));
  for (auto _ : state) {
    Matrix lu = a;
    benchmark::DoNotOptimize(linalg::dgetrf(lu, piv, 32));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(2.0 / 3.0 * static_cast<double>(n * n * n)));
}
BENCHMARK(BM_dgetrf)->Arg(64)->Arg(128)->Arg(256);

void BM_dgetf2_panel(benchmark::State& state) {
  const Index m = state.range(0), nb = 32;
  Rng rng(3);
  const Matrix a = Matrix::random(m, nb, rng);
  std::vector<Index> piv(static_cast<std::size_t>(nb));
  for (auto _ : state) {
    Matrix panel = a;
    benchmark::DoNotOptimize(
        linalg::dgetf2(m, nb, panel.data().data(), m, piv));
  }
}
BENCHMARK(BM_dgetf2_panel)->Arg(256)->Arg(1024);

void BM_engine_events(benchmark::State& state) {
  // Throughput of schedule/dispatch cycles: the simulator's heartbeat.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e;
    const int n_events = 10000;
    state.ResumeTiming();
    for (int i = 0; i < n_events; ++i)
      e.schedule_call(sim::Time::ns(100 * (i % 97)), [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_engine_events);

void BM_queue_push_pop(benchmark::State& state) {
  // Raw event-queue cost at a sustained queue depth: fill to `depth`
  // callbacks spread over a microsecond-scale window (the flit/kernel
  // clustering regime), then drain. One engine per iteration batch so
  // queue internals (pools, buckets) stay warm across iterations.
  const int depth = static_cast<int>(state.range(0));
  sim::Engine e;
  for (auto _ : state) {
    for (int i = 0; i < depth; ++i)
      e.schedule_call(e.now() + sim::Time::ns(10 * (i % 997)), [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_queue_push_pop)->Arg(1000)->Arg(100000);

void BM_schedule_call_small_capture(benchmark::State& state) {
  // The flit-router shape: a lambda capturing a couple of pointers
  // (<= 48 bytes). This path must not heap-allocate.
  sim::Engine e;
  std::uint64_t sink = 0;
  std::uint64_t* p = &sink;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i)
      e.schedule_call(e.now() + sim::Time::ns(i % 257),
                      [p, i] { *p += static_cast<std::uint64_t>(i); });
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_schedule_call_small_capture);

void BM_schedule_call_large_capture(benchmark::State& state) {
  // Oversized capture (> 48 bytes): allowed to fall back to the heap.
  sim::Engine e;
  std::uint64_t sink = 0;
  struct Big {
    std::uint64_t v[8];
  };
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      Big big{};
      big.v[0] = static_cast<std::uint64_t>(i);
      e.schedule_call(e.now() + sim::Time::ns(i % 257),
                      [&sink, big] { sink += big.v[0]; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_schedule_call_large_capture);

void BM_coroutine_spawn_join(benchmark::State& state) {
  // Root-process churn: frame allocation, one suspension, completion.
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.spawn([](sim::Engine& eng) -> sim::Task<> {
        co_await eng.delay(sim::Time::ns(5));
      }(e));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_coroutine_spawn_join);

void BM_coroutine_pingpong(benchmark::State& state) {
  // Round-trip cost of two processes exchanging through a trigger chain.
  for (auto _ : state) {
    sim::Engine e;
    e.spawn([](sim::Engine& eng) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) co_await eng.delay(sim::Time::ns(10));
    }(e));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_coroutine_pingpong);

void BM_xy_route(benchmark::State& state) {
  const mesh::Mesh2D m(33, 16);
  Rng rng(4);
  for (auto _ : state) {
    const auto a = static_cast<mesh::NodeId>(rng.below(528));
    const auto b = static_cast<mesh::NodeId>(rng.below(528));
    benchmark::DoNotOptimize(m.xy_route(a, b));
  }
}
BENCHMARK(BM_xy_route);

void BM_analytical_transfer(benchmark::State& state) {
  mesh::AnalyticalMeshNet net(mesh::Mesh2D(33, 16), mesh::AnalyticalParams{});
  Rng rng(5);
  sim::Time t = sim::Time::zero();
  for (auto _ : state) {
    const auto a = static_cast<mesh::NodeId>(rng.below(528));
    const auto b = static_cast<mesh::NodeId>(rng.below(528));
    t += sim::Time::ns(50);
    benchmark::DoNotOptimize(net.transfer(a, b, 1024, t));
  }
}
BENCHMARK(BM_analytical_transfer);

// Shared loop body for the two flit-step benchmarks: keeps the mesh
// loaded by re-injecting the same 128-message uniform batch whenever
// the previous batch drains, so every timed step is a busy step (an
// idle-network step measures nothing but the scheduler's no-op path).
template <typename StepFn>
void flit_step_loop(benchmark::State& state, StepFn step) {
  mesh::FlitNetwork net(mesh::Mesh2D(8, 8), mesh::FlitParams{});
  Rng rng(6);
  const auto refill = [&net, &rng] {
    for (int i = 0; i < 128; ++i) {
      const auto s = static_cast<mesh::NodeId>(rng.below(64));
      auto d = static_cast<mesh::NodeId>(rng.below(64));
      if (d == s) d = (d + 1) % 64;
      net.inject(s, d, 256, net.cycle());
    }
  };
  refill();
  for (auto _ : state) {
    if (net.undelivered() == 0) refill();
    benchmark::DoNotOptimize(step(net));
  }
}

void BM_flit_step(benchmark::State& state) {
  flit_step_loop(state, [](mesh::FlitNetwork& n) { return n.step(); });
}
BENCHMARK(BM_flit_step);

void BM_flit_step_reference(benchmark::State& state) {
  flit_step_loop(state,
                 [](mesh::FlitNetwork& n) { return n.step_reference(); });
}
BENCHMARK(BM_flit_step_reference);

// Parallel counterpart under the same busy re-inject load. The sharded
// scheduler only engages through run(), so one iteration drains a full
// 128-message batch across 4 row-band shards (threads=2) instead of
// stepping one cycle; items processed counts simulated cycles, making
// items/s comparable with the per-step pair above.
void BM_flit_step_parallel(benchmark::State& state) {
  mesh::FlitNetwork net(mesh::Mesh2D(8, 8), mesh::FlitParams{});
  net.set_threads(2);  // 4 shards on an 8x8 mesh
  Rng rng(6);
  const auto refill = [&net, &rng] {
    for (int i = 0; i < 128; ++i) {
      const auto s = static_cast<mesh::NodeId>(rng.below(64));
      auto d = static_cast<mesh::NodeId>(rng.below(64));
      if (d == s) d = (d + 1) % 64;
      net.inject(s, d, 256, net.cycle());
    }
  };
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const std::uint64_t before = net.cycle();
    refill();
    net.run();
    cycles += net.cycle() - before;
    benchmark::DoNotOptimize(net.undelivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_flit_step_parallel);

void BM_modeled_send_recv(benchmark::State& state) {
  // The modeled-mode hot path end to end: csend/crecv ping-pong with a
  // size-only pooled payload. After warmup this must run at zero heap
  // allocations per message (allocs_per_msg counter).
  nx::NxMachine m(proc::touchstone_delta().with_nodes(2));
  constexpr int kRoundtrips = 512;
  std::uint64_t messages = 0;
  std::uint64_t allocs_before = 0;
  for (auto _ : state) {
    allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
    m.run([](nx::NxContext& ctx) -> sim::Task<> {
      const int peer = 1 - ctx.rank();
      for (int i = 0; i < kRoundtrips; ++i) {
        if (ctx.rank() == 0) {
          nx::Payload p = nx::Payload::sized(64);
          co_await ctx.send(peer, 7, 512, std::move(p));
          nx::Message back = co_await ctx.recv(peer, 8);
          (void)back;
        } else {
          nx::Message got = co_await ctx.recv(peer, 7);
          (void)got;
          nx::Payload p = nx::Payload::sized(64);
          co_await ctx.send(peer, 8, 512, std::move(p));
        }
      }
    });
    messages += 2 * kRoundtrips;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["allocs_per_msg"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      (2.0 * kRoundtrips));
}
BENCHMARK(BM_modeled_send_recv);

void BM_lu_skeleton_replay(benchmark::State& state) {
  // Replay throughput of a recorded LU schedule (ops/s): the rate at
  // which the full-Delta HPL sweep consumes its cached skeletons.
  nx::NxMachine derive_machine(proc::ipsc860());
  linalg::LuConfig cfg = linalg::lu_config_for(derive_machine, 2000, 64);
  const auto skel = linalg::derive_lu_skeleton(derive_machine, cfg, nullptr);
  nx::NxMachine m(proc::ipsc860());
  std::uint64_t ops = 0;
  std::uint64_t allocs_before = 0;
  for (auto _ : state) {
    allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(linalg::replay_lu_skeleton(m, cfg, *skel));
    ops += skel->total_ops();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      static_cast<double>(skel->total_ops()));
}
BENCHMARK(BM_lu_skeleton_replay);

/// Console reporter that also accumulates per-benchmark real times so
/// the custom main below can emit the shared --json metrics schema.
class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      std::string key = r.benchmark_name() + "_ns";
      for (char& c : key)
        if (c == '/' || c == ':') c = '_';
      results.emplace_back(std::move(key), r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<std::pair<std::string, double>> results;
};

}  // namespace

// Custom main instead of benchmark_main: peel off the repo-standard
// `--json <path>` before google-benchmark sees argv, then emit the
// shared BenchMetrics schema. These are host-time numbers (the
// simulator's own speed), so there is no sim_time_s here and the CI
// gate treats every value as wall-clock (warn-only).
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
    return 1;

  MetricsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  hpccsim::obs::BenchMetrics bm("micro_kernels");
  for (const auto& [key, ns] : reporter.results) bm.metric(key, ns);
  bm.write_file(json_path);
  return 0;
}

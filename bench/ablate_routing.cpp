// Ablation A8: deterministic XY vs turn-model adaptive routing.
//
// The Delta's mesh chips routed XY (simple, deterministic); the
// academic literature of the day argued for adaptive routers. The
// flit-level simulator implements both (west-first turn model), so the
// trade can be measured: adaptivity helps adversarial/hot traffic and
// costs nothing on benign patterns.
#include <cstdio>

#include "mesh/flit.hpp"
#include "mesh/traffic.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hpccsim;
using namespace hpccsim::mesh;

double mean_latency_us(const Mesh2D& mesh, RouteAlgo algo, Pattern pattern,
                       double gap_us, std::uint64_t seed) {
  TrafficConfig cfg;
  cfg.pattern = pattern;
  cfg.messages_per_node = 40;
  cfg.message_bytes = 256;
  cfg.mean_gap = sim::Time::us(gap_us);
  cfg.hotspot_fraction = 0.3;
  cfg.seed = seed;
  FlitParams fp;
  fp.routing = algo;
  FlitNetwork net(mesh, fp);
  const double cyc_us = net.cycle_time().as_us();
  for (const auto& t : generate_traffic(mesh, cfg))
    net.inject(t.src, t.dst, t.bytes,
               static_cast<std::uint64_t>(t.depart.as_us() / cyc_us));
  net.run();
  RunningStat lat;
  for (std::size_t i = 0; i < net.messages().size(); ++i)
    lat.add(static_cast<double>(net.latency_cycles(i)) * cyc_us);
  return lat.mean();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("ablate_routing", "XY vs west-first adaptive routing");
  args.add_option("width", "mesh width", "8");
  args.add_option("height", "mesh height", "8");
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  const Mesh2D mesh(static_cast<std::int32_t>(args.integer("width")),
                    static_cast<std::int32_t>(args.integer("height")));
  std::printf("== A8: routing ablation on a %s ==\n",
              mesh.describe().c_str());
  Table t({"pattern", "gap (us)", "xy mean (us)", "west-first mean (us)",
           "adaptive gain"});
  double xy_total_us = 0.0, wf_total_us = 0.0;
  for (const Pattern p : {Pattern::UniformRandom, Pattern::Transpose,
                          Pattern::HotSpot}) {
    for (const double gap : {300.0, 80.0, 40.0}) {
      const double xy = mean_latency_us(mesh, RouteAlgo::XY, p, gap, 77);
      const double wf =
          mean_latency_us(mesh, RouteAlgo::WestFirst, p, gap, 77);
      xy_total_us += xy;
      wf_total_us += wf;
      t.add_row({pattern_name(p), Table::num(gap, 0), Table::num(xy, 1),
                 Table::num(wf, 1), Table::percent(xy / wf - 1.0, 1)});
    }
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected (and classic in the literature): near-zero "
              "difference at low load; large adaptive gains on transpose "
              "(it spreads the bisection hotspots XY creates); no gain on "
              "hotspot traffic (the ejection port is the bottleneck, no "
              "route avoids it); and a LOSS on deeply saturated uniform "
              "traffic, where adaptive misrouting spreads congestion\n");

  obs::BenchMetrics bm("ablate_routing");
  bm.config("width", args.integer("width"));
  bm.config("height", args.integer("height"));
  // Sum of per-point mean latencies: a deterministic simulated quantity
  // for the CI drift gate (this bench has no single engine clock).
  bm.add_sim_time(sim::Time::us(xy_total_us + wf_total_us));
  bm.metric("xy_mean_us_total", xy_total_us);
  bm.metric("west_first_mean_us_total", wf_total_us);
  bm.write_file(args.json_path());
  return 0;
}

// Flit-network throughput microbench: wall-clock cost of the fast
// schedule (active-set stepping + idle-cycle skip + wormhole
// fast-forward) against the full-scan reference schedule, on identical
// traffic — the headline before/after exhibit for the flit hot-path
// overhaul (docs/PERF.md).
//
// Every point runs both schedules and cross-checks that they delivered
// every message at the identical cycle (the bench exits non-zero on any
// divergence, so the CI metrics run doubles as an equivalence check at
// bench scale). Wall times and flit-hops/s are host-dependent and
// therefore reported, never gated; the simulated spans and counters are
// deterministic and land in the --json metrics.
#include <cstdio>

#include "mesh/flit.hpp"
#include "mesh/traffic.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpccsim;
  using namespace hpccsim::mesh;
  ArgParser args("flit_throughput",
                 "flit-network fast path vs reference wall throughput");
  args.add_option("width", "mesh width", "16");
  args.add_option("height", "mesh height", "16");
  args.add_option("shape", "mesh as WxH, overrides width/height "
                  "(weak-scaling presets: 64x64, 128x128)", "");
  args.add_option("threads", "worker threads for the fast schedule", "1");
  args.add_option("messages", "messages per node per point", "40");
  args.add_option("bytes", "message size in bytes", "1024");
  args.add_option("routing", "xy | west-first", "xy");
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  std::int32_t width = static_cast<std::int32_t>(args.integer("width"));
  std::int32_t height = static_cast<std::int32_t>(args.integer("height"));
  if (!args.str("shape").empty()) {
    int w = 0, h = 0;
    if (std::sscanf(args.str("shape").c_str(), "%dx%d", &w, &h) != 2 ||
        w < 1 || h < 1) {
      std::fprintf(stderr, "bad --shape '%s' (want WxH, e.g. 64x64)\n",
                   args.str("shape").c_str());
      return 2;
    }
    width = w;
    height = h;
  }
  const int threads = static_cast<int>(args.integer("threads"));
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }

  const Mesh2D mesh(width, height);
  FlitParams fp;
  fp.routing = args.str("routing") == "west-first" ? RouteAlgo::WestFirst
                                                   : RouteAlgo::XY;
  std::printf("== flit throughput: %s mesh, %s routing, %d thread%s ==\n",
              mesh.describe().c_str(), route_algo_name(fp.routing), threads,
              threads == 1 ? "" : "s");

  // Sparse -> saturating offered load; sparse points are where the
  // skip/fast-forward machinery pays, saturated points are where the
  // active set degenerates to (almost) every router and only the SoA
  // layout helps.
  const std::vector<double> gaps{50000.0, 5000.0, 20.0};

  Table t({"gap (us)", "cycles", "link flits", "skipped", "ffwd flits",
           "fast (ms)", "ref (ms)", "fast Mhop/s", "speedup"});
  obs::BenchMetrics bm("flit_throughput");
  bm.config("width", static_cast<std::int64_t>(width));
  bm.config("height", static_cast<std::int64_t>(height));
  bm.config("messages", args.integer("messages"));
  bm.config("bytes", args.integer("bytes"));
  bm.config("routing", route_algo_name(fp.routing));
  bm.set_threads(threads);

  obs::Registry totals;
  double wall_fast = 0.0, wall_ref = 0.0;
  std::int64_t total_hops = 0;
  int rc = 0;
  for (const double gap_us : gaps) {
    TrafficConfig cfg;
    cfg.messages_per_node =
        static_cast<std::int32_t>(args.integer("messages"));
    cfg.message_bytes = static_cast<Bytes>(args.integer("bytes"));
    cfg.mean_gap = sim::Time::us(gap_us);
    cfg.seed = 1992;
    const auto trace = generate_traffic(mesh, cfg);

    FlitNetwork fast(mesh, fp);
    FlitNetwork ref(mesh, fp);
    // The reference stays sequential, so with --threads > 1 the
    // cross-check below doubles as a parallel-vs-sequential oracle at
    // bench scale.
    fast.set_threads(threads);
    const double cyc_us = fast.cycle_time().as_us();
    for (const auto& r : trace) {
      const auto at = static_cast<std::uint64_t>(r.depart.as_us() / cyc_us);
      fast.inject(r.src, r.dst, r.bytes, at);
      ref.inject(r.src, r.dst, r.bytes, at);
    }

    obs::WallTimer tw;
    fast.run();
    const double fast_s = tw.elapsed_s();
    tw.restart();
    ref.run_reference();
    const double ref_s = tw.elapsed_s();

    // Equivalence cross-check at bench scale: any divergence is a bug
    // in the fast schedule.
    for (std::size_t i = 0; i < fast.messages().size(); ++i) {
      if (fast.messages()[i].delivered_cycle !=
          ref.messages()[i].delivered_cycle) {
        std::fprintf(stderr,
                     "FATAL: fast path diverged from reference at gap=%g "
                     "message %zu\n",
                     gap_us, i);
        rc = 1;
      }
    }
    if (fast.link_flits() != ref.link_flits() ||
        fast.cycle() != ref.cycle()) {
      std::fprintf(stderr, "FATAL: counter divergence at gap=%g\n", gap_us);
      rc = 1;
    }

    wall_fast += fast_s;
    wall_ref += ref_s;
    total_hops += static_cast<std::int64_t>(fast.link_flits());
    bm.add_sim_time(fast.cycle_time() * fast.cycle());
    obs::Registry point;
    fast.dump_counters(point);
    totals.merge(point);

    t.add_row({Table::num(gap_us, 0),
               Table::num(static_cast<double>(fast.cycle()), 0),
               Table::num(static_cast<double>(fast.link_flits()), 0),
               Table::num(static_cast<double>(fast.skipped_cycles()), 0),
               Table::num(static_cast<double>(fast.fastforwarded_flits()), 0),
               Table::num(fast_s * 1e3, 2), Table::num(ref_s * 1e3, 2),
               Table::num(static_cast<double>(fast.link_flits()) / fast_s /
                              1e6,
                          1),
               Table::num(ref_s / fast_s, 1)});
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: sparse points fast-forward nearly everything "
              "(speedup bounded only by idle-window length); saturated "
              "points converge to the SoA constant-factor win\n");

  bm.metric("link_flits", total_hops);
  bm.metric("wall_fast_s", wall_fast);
  bm.metric("wall_reference_s", wall_ref);
  bm.metric("speedup", wall_ref / wall_fast);
  bm.attach_counters(totals);
  bm.write_file(args.json_path());
  return rc;
}

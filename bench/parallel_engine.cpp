// Parallel nx-engine scaling bench: wall-clock cost of the rank-band
// sharded discrete-event engine across a thread sweep on modeled
// LU + CG workloads, with a byte-identity cross-check between every
// thread count (docs/MODEL.md §15, docs/PERF.md).
//
// Every thread count runs the identical modeled schedule; the first
// entry of --threads is the oracle, and any divergence in a result
// field or a thread-invariant counter at a later entry exits non-zero
// — so the CI metrics run doubles as the parallel determinism check at
// bench scale. Wall times and speedups are host-dependent and
// therefore reported, never gated (the container CI host has a single
// core; see docs/PERF.md for multi-core numbers). Pass
// --require-speedup X to turn the max-thread speedup into a hard gate
// on hosts where the parallelism is real.
//
// Machines: any preset (delta, paragon, ...); the headline is
// "columbia" — the 0.8-Teraflops-class 128 x 128 mesh (16,384 ranks)
// of the program's mid-decade roadmap, big enough that each rank band
// carries real work.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/distlu.hpp"
#include "nx/machine_runtime.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "proc/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// Thread-invariant whole-run counters the sweep must reproduce exactly
// at every thread count. Partition-dependent counters
// (core.engine.peak_queue_depth, core.engine.call_slot_high_water,
// engine.shard.*, nx.payload.pool.*) are intentionally absent —
// docs/MODEL.md §15.
constexpr const char* kInvariantCounters[] = {
    "core.engine.events",  "core.engine.calls_scheduled",
    "nx.sends",            "nx.recvs",
    "nx.bytes_sent",       "nx.flops_charged",
    "nx.compute.ns",       "nx.send_wait.ns",
    "nx.recv_wait.ns",     "mesh.messages",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hpccsim;
  ArgParser args("parallel_engine",
                 "rank-band sharded nx engine scaling (modeled LU + CG)");
  args.add_option("machine", "machine preset (columbia, delta, paragon)",
                  "columbia");
  args.add_option("nodes", "shrink to this many nodes (0 = full machine)",
                  "0");
  args.add_option("threads", "comma list of worker-thread counts", "1,2,4,8");
  args.add_option("n", "LU order (0 = one block row per process column)",
                  "0");
  args.add_option("nb", "LU block size", "64");
  args.add_option("cg-grid-n", "CG unknowns per side (0 = 8 per process row)",
                  "0");
  args.add_option("cg-iters", "modeled CG iterations", "20");
  args.add_option("workload", "comma list: lu, cg", "lu,cg");
  args.add_option("require-speedup",
                  "fail unless max-thread speedup reaches this (0 = off)",
                  "0");
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  proc::MachineConfig mc = proc::machine_by_name(args.str("machine"));
  if (const std::int64_t nodes = args.integer("nodes"); nodes > 0)
    mc = mc.with_nodes(static_cast<std::int32_t>(nodes));
  const auto thread_list = args.int_list("threads");
  if (thread_list.empty()) {
    std::fprintf(stderr, "--threads must name at least one count\n");
    return 2;
  }
  const std::string workload = args.str("workload");
  const bool run_lu = workload.find("lu") != std::string::npos;
  const bool run_cg = workload.find("cg") != std::string::npos;
  if (!run_lu && !run_cg) {
    std::fprintf(stderr, "--workload must name lu and/or cg\n");
    return 2;
  }
  const std::int64_t nb = args.integer("nb");
  const std::int64_t wide =
      std::max<std::int64_t>(mc.mesh_width, mc.mesh_height);
  const std::int64_t n = args.integer("n") > 0 ? args.integer("n") : nb * wide;
  const std::int64_t cg_grid_n =
      args.integer("cg-grid-n") > 0 ? args.integer("cg-grid-n") : 8 * wide;
  const auto cg_iters = static_cast<std::int32_t>(args.integer("cg-iters"));

  std::printf("== parallel engine: %s (%d nodes), lu n=%lld nb=%lld, "
              "cg grid %lldx%lld x%d iters ==\n",
              mc.name.c_str(), mc.node_count(), static_cast<long long>(n),
              static_cast<long long>(nb), static_cast<long long>(cg_grid_n),
              static_cast<long long>(cg_grid_n), cg_iters);

  Table t({"threads", "bands", "windows", "intents", "handoffs", "wall (s)",
           "speedup"});
  obs::BenchMetrics bm("parallel_engine");
  bm.config("machine", mc.name);
  bm.config("n", n);
  bm.config("nb", nb);
  bm.config("cg_grid_n", cg_grid_n);
  bm.config("cg_iters", static_cast<std::int64_t>(cg_iters));
  bm.config("workload", workload);

  int rc = 0;
  double wall_base = 0.0, wall_best = 0.0;
  std::int64_t max_threads = 1;
  linalg::LuResult lu_oracle;
  linalg::CgResult cg_oracle;
  obs::Registry oracle_reg;
  obs::Registry counters;

  for (std::size_t ti = 0; ti < thread_list.size(); ++ti) {
    const int threads = static_cast<int>(thread_list[ti]);
    nx::NxMachine machine(mc);
    machine.set_threads(threads);

    obs::WallTimer tw;
    linalg::LuResult lu;
    if (run_lu) {
      const linalg::LuConfig cfg = linalg::lu_config_for(machine, n, nb);
      lu = linalg::run_distributed_lu(machine, cfg);
    }
    linalg::CgResult cg;
    if (run_cg) {
      linalg::CgConfig cfg;
      cfg.grid_n = cg_grid_n;
      cfg.grid = linalg::ProcessGrid{mc.mesh_height, mc.mesh_width};
      cfg.numeric = false;
      cfg.modeled_iters = cg_iters;
      cg = linalg::run_distributed_cg(machine, cfg);
    }
    const double wall_s = tw.elapsed_s();
    obs::Registry& reg = machine.snapshot_counters();

    if (ti == 0) {
      lu_oracle = lu;
      cg_oracle = cg;
      oracle_reg = reg;
      wall_base = wall_s;
      if (run_lu) bm.add_sim_time(lu.elapsed);
      if (run_cg) bm.add_sim_time(cg.elapsed);
    } else {
      // Byte-identity cross-check against the first thread count: every
      // simulated-time result and every thread-invariant counter must
      // match exactly — "same machine, same program, same answer".
      std::ostringstream bad;
      if (run_lu) {
        if (lu.elapsed != lu_oracle.elapsed)
          bad << " lu.elapsed " << lu.elapsed.str()
              << "!=" << lu_oracle.elapsed.str();
        if (lu.gflops != lu_oracle.gflops) bad << " lu.gflops";
        if (lu.messages != lu_oracle.messages) bad << " lu.messages";
        if (lu.bytes_moved != lu_oracle.bytes_moved) bad << " lu.bytes_moved";
        if (lu.flops_charged != lu_oracle.flops_charged)
          bad << " lu.flops_charged";
        if (lu.compute_time != lu_oracle.compute_time)
          bad << " lu.compute_time";
      }
      if (run_cg) {
        if (cg.elapsed != cg_oracle.elapsed)
          bad << " cg.elapsed " << cg.elapsed.str()
              << "!=" << cg_oracle.elapsed.str();
        if (cg.iterations != cg_oracle.iterations) bad << " cg.iterations";
        if (cg.messages != cg_oracle.messages) bad << " cg.messages";
        if (cg.bytes_moved != cg_oracle.bytes_moved) bad << " cg.bytes_moved";
      }
      for (const char* name : kInvariantCounters)
        if (reg.value(name) != oracle_reg.value(name))
          bad << ' ' << name << ' ' << reg.value(name)
              << "!=" << oracle_reg.value(name);
      if (const std::string s = bad.str(); !s.empty()) {
        std::fprintf(stderr,
                     "FATAL: threads=%d diverged from threads=%lld:%s\n",
                     threads, static_cast<long long>(thread_list[0]),
                     s.c_str());
        rc = 1;
      }
    }
    wall_best = wall_s;
    if (thread_list[ti] > max_threads) max_threads = thread_list[ti];
    // Counters land in the JSON from the last sweep entry, so the
    // engine.shard.* counters reflect the widest configuration.
    // Partition-dependent counters are deterministic per thread count
    // only — the determinism harness normalizes them
    // (tests/compare_jobs.cmake).
    if (ti + 1 == thread_list.size()) counters = reg;

    t.add_row({Table::num(static_cast<double>(threads), 0),
               Table::integer(reg.value("engine.shard.bands")),
               Table::integer(reg.value("engine.shard.windows")),
               Table::integer(reg.value("engine.shard.intents")),
               Table::integer(reg.value("engine.shard.handoffs")),
               Table::num(wall_s, 2), Table::num(wall_base / wall_s, 2)});
    bm.metric("wall_t" + std::to_string(threads) + "_s", wall_s);
    bm.metric("speedup_t" + std::to_string(threads), wall_base / wall_s);
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: identical simulated results and thread-invariant "
              "counters at every thread count; speedup scales with cores "
              "(single-core hosts pipeline the bands with no gain)\n");

  if (run_lu) {
    bm.metric("lu_gflops", lu_oracle.gflops);
    bm.metric("lu_sim_time_s", lu_oracle.elapsed.as_sec());
    bm.metric("lu_messages",
              static_cast<std::int64_t>(lu_oracle.messages));
  }
  if (run_cg) {
    bm.metric("cg_sim_time_s", cg_oracle.elapsed.as_sec());
    bm.metric("cg_messages",
              static_cast<std::int64_t>(cg_oracle.messages));
  }
  bm.set_threads(static_cast<int>(max_threads));
  bm.attach_counters(counters);
  bm.write_file(args.json_path());

  const double require = args.real("require-speedup");
  if (require > 0.0 && thread_list.size() > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    const double speedup = wall_base / wall_best;
    if (hw < static_cast<unsigned>(max_threads)) {
      // The sweep oversubscribes this host, so the speedup gate would
      // only measure scheduling overhead; report the overhead floor
      // instead of failing (docs/PERF.md).
      std::fprintf(stderr,
                   "require-speedup: skipped (host has %u hardware threads, "
                   "sweep max is %lld); single-core overhead floor %.2fx\n",
                   hw, static_cast<long long>(max_threads), speedup);
    } else if (speedup < require) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx at max threads below required "
                   "%.2fx\n",
                   speedup, require);
      rc = 1;
    }
  }
  return rc;
}

// Exhibit A10 (ASTA extension): the two dense factorizations compared.
//
// LU (with pivoting) is the LINPACK benchmark; QR is the numerically
// robust alternative the CAS least-squares and eigen codes used. QR does
// twice the flops and is reduction-bound in its panel phase, so its
// sustained fraction of peak trails LU's — the classic trade, measured
// here on the full simulated Delta.
#include <cstdio>

#include "linalg/distlu.hpp"
#include "linalg/distqr.hpp"
#include "obs/metrics.hpp"
#include "proc/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpccsim;
  ArgParser args("asta_factorizations", "LU vs QR on the simulated Delta");
  args.add_option("n", "problem orders", "1000,2000,4000,8000");
  args.add_option("nodes", "node count (0 = full 528)", "64");
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  proc::MachineConfig mc = proc::touchstone_delta();
  if (args.integer("nodes") > 0)
    mc = mc.with_nodes(static_cast<std::int32_t>(args.integer("nodes")));
  std::printf("== A10: LU vs QR on %s (%d nodes) ==\n", mc.name.c_str(),
              mc.node_count());

  obs::BenchMetrics bm("asta_factorizations");
  bm.config("n", args.str("n"));
  bm.config("nodes", static_cast<std::int64_t>(mc.node_count()));
  double lu_gflops_last = 0.0, qr_gflops_last = 0.0;

  Table t({"n", "LU time (s)", "LU GFLOPS", "QR time (s)", "QR GFLOPS",
           "QR/LU time"});
  for (const std::int64_t n : args.int_list("n")) {
    nx::NxMachine lu_machine(mc);
    const auto lu = linalg::run_distributed_lu(
        lu_machine, linalg::lu_config_for(lu_machine, n, 64));

    nx::NxMachine qr_machine(mc);
    linalg::QrConfig qc;
    qc.n = n;
    qc.nb = 64;
    qc.grid = linalg::ProcessGrid{mc.mesh_height, mc.mesh_width};
    qc.mode = linalg::ExecMode::Modeled;
    const auto qr = linalg::run_distributed_qr(qr_machine, qc);

    bm.add_sim_time(lu.elapsed);
    bm.add_sim_time(qr.elapsed);
    lu_gflops_last = lu.gflops;
    qr_gflops_last = qr.gflops;
    t.add_row({Table::integer(n), Table::num(lu.elapsed.as_sec(), 2),
               Table::num(lu.gflops, 2), Table::num(qr.elapsed.as_sec(), 2),
               Table::num(qr.gflops, 2),
               Table::num(qr.elapsed.as_sec() / lu.elapsed.as_sec(), 2)});
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: at small orders both are latency-bound and tie "
              "(QR's per-column collectives mirror LU's pivot search); as "
              "n grows QR's 2x flops and reduction-bound panel push its "
              "time toward 2x LU's, while its headline GFLOPS (4/3 n^3) "
              "stays ~2x LU's by construction\n");

  bm.metric("lu_gflops_last", lu_gflops_last);
  bm.metric("qr_gflops_last", qr_gflops_last);
  bm.write_file(args.json_path());
  return 0;
}

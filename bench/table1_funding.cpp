// Exhibit T1: "FEDERAL HPCC PROGRAM FUNDING FY 92-93 (Dollars in
// millions)" — the paper's funding table, regenerated from the program
// model with derived growth and share columns, plus the component split
// and the responsibilities matrix from the adjacent slides.
#include <cstdio>

#include "hpcc/program.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hpccsim;
  ArgParser args("table1_funding",
                 "Reproduces the paper's FY92-93 HPCC funding table");
  args.add_json_option();
  args.add_flag("csv", "emit CSV instead of aligned text");
  args.add_flag("markdown", "emit Markdown tables");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  auto emit = [&](const Table& t) {
    if (args.flag("csv")) std::printf("%s\n", t.csv().c_str());
    else if (args.flag("markdown")) std::printf("%s\n", t.markdown().c_str());
    else std::printf("%s\n", t.ascii().c_str());
  };

  std::printf("== T1: FEDERAL HPCC PROGRAM FUNDING FY 92-93 "
              "(dollars in millions) ==\n");
  emit(hpcc::funding_table());

  std::printf("== Program components (FY92 split) ==\n");
  emit(hpcc::component_table());

  std::printf("== Agency x component responsibilities ==\n");
  emit(hpcc::responsibilities_table());

  std::printf("== Estimated agency x component budgets, FY92 ($M) ==\n");
  emit(hpcc::budget_matrix_table());

  std::printf("paper check: FY92 total $%.1fM (paper: 654.8), "
              "FY93 total $%.1fM (paper: 802.9)\n",
              hpcc::total_fy1992(), hpcc::total_fy1993());

  obs::BenchMetrics bm("table1_funding");
  bm.metric("fy92_total_musd", hpcc::total_fy1992());
  bm.metric("fy93_total_musd", hpcc::total_fy1993());
  bm.write_file(args.json_path());
  return 0;
}

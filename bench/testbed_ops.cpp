// Exhibit A6 (testbed-operations extension): a consortium day at the
// Delta machine room.
//
// The paper's APPROACH slide — "establish high performance computing
// testbeds" used by "application software teams" — in operation means a
// batch queue feeding a space-shared mesh. This harness replays a
// representative day of consortium jobs (hero runs, production sweeps,
// debug jobs) under FCFS and EASY-backfill, reporting the metrics a
// testbed operator lived by.
#include <cstdio>

#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "sched/batch.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpccsim;
  using namespace hpccsim::sched;
  ArgParser args("testbed_ops", "batch scheduling on the space-shared Delta");
  args.add_option("jobs", "jobs in the day's workload", "150");
  args.add_option("seeds", "workload seeds to average over", "3,17,29");
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  const mesh::Mesh2D delta(33, 16);
  const auto njobs = static_cast<std::int32_t>(args.integer("jobs"));
  std::printf("== A6: %d-job consortium day on the %s ==\n", njobs,
              delta.describe().c_str());

  obs::BenchMetrics bm("testbed_ops");
  bm.config("jobs", static_cast<std::int64_t>(njobs));
  bm.config("seeds", args.str("seeds"));
  obs::Registry totals;
  double bf_wait_sum = 0.0;
  int bf_runs = 0;

  Table t({"policy", "seed", "makespan (h)", "utilization", "mean wait (min)",
           "p-max wait (min)", "backfilled", "mean frag"});
  for (const auto policy :
       {SchedulePolicy::FCFS, SchedulePolicy::EasyBackfill}) {
    for (const std::int64_t seed : args.int_list("seeds")) {
      BatchSimulator sim(delta, policy);
      for (auto& j : consortium_workload(njobs, delta.node_count(),
                                         static_cast<std::uint64_t>(seed)))
        sim.submit(std::move(j));
      const BatchResult r = sim.run();
      bm.add_sim_time(r.makespan);
      obs::Registry reg;
      export_counters(r, reg);
      totals.merge(reg);
      if (policy == SchedulePolicy::EasyBackfill) {
        bf_wait_sum += r.wait_minutes.mean();
        ++bf_runs;
      }
      t.add_row({policy_name(policy), Table::integer(seed),
                 Table::num(r.makespan.as_sec() / 3600.0, 2),
                 Table::num(r.utilization * 100.0, 1) + "%",
                 Table::num(r.wait_minutes.mean(), 1),
                 Table::num(r.wait_minutes.max(), 1),
                 Table::integer(r.backfilled),
                 Table::num(r.frag_samples.mean(), 3)});
    }
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: EASY backfill cuts mean queue wait sharply at "
              "equal-or-better utilization — the operational argument "
              "that made backfill universal on space-shared machines\n");

  bm.metric("backfilled", totals.value("sched.backfilled"));
  bm.metric("easy_mean_wait_min", bf_runs ? bf_wait_sum / bf_runs : 0.0);
  bm.attach_counters(totals);
  bm.write_file(args.json_path());
  return 0;
}

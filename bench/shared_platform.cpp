// Exhibit A13: a month of shared-platform production scheduling.
//
// One run simulates ~30 days of a 33x16 space-shared machine working
// through ~1000 jobs from five application communities, with node
// crashes rolling jobs back to their last checkpoint and every
// checkpoint/restore fighting for the same few-MB/s CFS. The three
// checkpoint-ordering strategies from src/sched/platform.hpp run as
// sweep points over the SAME workload and the SAME fault trace (common
// random numbers), so the waste column isolates the ordering policy:
// cooperative serialization should beat the uncoordinated Young/Daly
// baseline on platform waste, and the harness fails if it doesn't.
//
// Determinism: each strategy owns an engine/simulator, run under
// parallel_for's static partition; registries merge in strategy order,
// so stdout and --json are byte-identical at any --jobs value.
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/platform.hpp"
#include "sched/workload.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace hpccsim;
using namespace hpccsim::sched;

struct StrategyRun {
  CheckpointStrategy strategy = CheckpointStrategy::Uncoordinated;
  PlatformResult result;
  obs::Registry registry;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("shared_platform",
                 "a month of space-shared production with interfering "
                 "checkpoints");
  args.add_option("width", "mesh columns", "33");
  args.add_option("height", "mesh rows", "16");
  args.add_option("njobs", "jobs in the month's trace", "1000");
  args.add_option("days", "target span of the arrival process", "30");
  args.add_option("node-mtbf-days", "per-node MTBF in days", "50");
  // Four disks puts the aggregate at ~4.4 MB/s — the sustained (not
  // peak) CFS rate of the era, and the saturated regime where
  // checkpoint ordering is worth having.
  args.add_option("io-disks", "CFS disk count (sets aggregate bandwidth)",
                  "4");
  args.add_option("seed", "workload seed", "1992");
  args.add_option("failure-seed", "fault-trace seed", "1");
  args.add_jobs_option();
  args.add_json_option();
  args.add_flag("csv", "emit CSV");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  const mesh::Mesh2D mesh(static_cast<std::int32_t>(args.integer("width")),
                          static_cast<std::int32_t>(args.integer("height")));

  PlatformWorkloadConfig wc;
  wc.seed = static_cast<std::uint64_t>(args.integer("seed"));
  wc.jobs = static_cast<std::int32_t>(args.integer("njobs"));
  wc.days = args.real("days");
  const std::vector<PlatformJob> trace = platform_workload(wc, mesh);

  PlatformConfig base;
  base.node_mtbf = sim::Time::sec(args.real("node-mtbf-days") * 86400.0);
  base.failure_seed = static_cast<std::uint64_t>(args.integer("failure-seed"));
  base.io_disks = static_cast<std::int32_t>(args.integer("io-disks"));

  // Constructed before the sweep: wall_time_s runs construction->write.
  obs::BenchMetrics bm("shared_platform");
  bm.config("width", args.integer("width"));
  bm.config("height", args.integer("height"));
  bm.config("njobs", args.integer("njobs"));
  bm.config("days", args.str("days"));
  bm.config("node_mtbf_days", args.str("node-mtbf-days"));
  bm.config("io_disks", args.integer("io-disks"));
  bm.config("seed", args.integer("seed"));
  bm.config("failure_seed", args.integer("failure-seed"));
  bm.set_threads(args.jobs());

  const std::vector<CheckpointStrategy> strategies = {
      CheckpointStrategy::Uncoordinated,
      CheckpointStrategy::FifoCooperative,
      CheckpointStrategy::OrderedCooperative,
  };
  std::vector<StrategyRun> runs(strategies.size());
  parallel_for(strategies.size(), args.jobs(), [&](std::size_t i) {
    StrategyRun& r = runs[i];
    r.strategy = strategies[i];
    PlatformConfig cfg = base;
    cfg.strategy = r.strategy;
    PlatformSimulator sim(mesh, cfg);
    sim.submit(trace);
    r.result = sim.run();
    sim.export_counters(r.registry);
  });

  std::printf("== A13: %d jobs over ~%.0f days on %dx%d, node MTBF %.0f "
              "days, CFS %.1f MB/s ==\n",
              wc.jobs, wc.days, mesh.width(), mesh.height(),
              args.real("node-mtbf-days"),
              io::effective_cfs_bandwidth(io::CfsConfig{}, base.io_disks)
                      .bytes_per_sec() /
                  1e6);

  Table t({"strategy", "waste %", "util %", "useful nh", "ckpt nh", "lost nh",
           "restore nh", "rollbk", "ckpts", "aborted", "wait min",
           "b-slowdown", "io-wait s"});
  obs::Registry merged;
  for (const StrategyRun& r : runs) {
    const PlatformResult& p = r.result;
    bm.add_sim_time(p.makespan);
    t.add_row({strategy_name(r.strategy), Table::num(p.waste() * 100.0, 2),
               Table::num(p.utilization * 100.0, 1),
               Table::num(p.useful_node_seconds / 3600.0, 0),
               Table::num(p.ckpt_node_seconds / 3600.0, 0),
               Table::num(p.lost_node_seconds / 3600.0, 0),
               Table::num(p.restore_node_seconds / 3600.0, 0),
               Table::integer(p.rollbacks), Table::integer(p.ckpts_committed),
               Table::integer(p.ckpts_aborted),
               Table::num(p.wait_minutes.mean(), 1),
               Table::num(p.bounded_slowdown.mean(), 2),
               Table::num(p.ckpt_queue_wait_s.mean(), 1)});
    merged.merge(r.registry);
  }
  std::printf("%s\n", args.flag("csv") ? t.csv().c_str() : t.ascii().c_str());
  std::printf("expected: serializing checkpoint writes keeps every write "
              "short (no mutual stretching), and waiting jobs keep "
              "computing, so both cooperative strategies waste less of "
              "the platform than uncoordinated Young/Daly; smallest-first "
              "ordering shaves the queue further\n");

  const double waste_unc = runs[0].result.waste();
  const double waste_fifo = runs[1].result.waste();
  const double waste_ord = runs[2].result.waste();
  bm.metric("waste_pct_uncoordinated", waste_unc * 100.0);
  bm.metric("waste_pct_fifo_coop", waste_fifo * 100.0);
  bm.metric("waste_pct_ordered_coop", waste_ord * 100.0);
  bm.metric("utilization_pct_uncoordinated",
            runs[0].result.utilization * 100.0);
  bm.metric("bounded_slowdown_ordered",
            runs[2].result.bounded_slowdown.mean());
  bm.metric("jobs_total", static_cast<std::int64_t>(wc.jobs) * 3);
  bm.attach_counters(merged);
  bm.write_file(args.json_path());

  const bool coop_wins =
      waste_fifo < waste_unc || waste_ord < waste_unc;
  std::printf("verdict: %s (uncoordinated %.2f%%, fifo-coop %.2f%%, "
              "ordered-coop %.2f%% platform waste)\n",
              coop_wins ? "PASS" : "CHECK", waste_unc * 100.0,
              waste_fifo * 100.0, waste_ord * 100.0);
  return coop_wins ? 0 : 1;
}

// Computational Aerosciences-style example: a 2-D heat / diffusion solver
// on the simulated Delta.
//
// The paper's CAS consortium exists to move exactly this kind of code
// ("generic CAS applications software") onto parallel machines. This
// example is a real numeric solver: the global grid is block-decomposed
// over the process grid, every Jacobi sweep exchanges halo rows/columns
// with the four mesh neighbours, and the converged field is verified
// against a serial reference computed on rank 0.
//
//   $ ./heat2d_cas [grid-points] [iterations]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nx/collectives.hpp"
#include "nx/machine_runtime.hpp"
#include "proc/machine.hpp"

using namespace hpccsim;

namespace {

constexpr int kTagHalo = 20;  // +0..3 for the four directions
constexpr double kTopBoundary = 1.0;

struct HeatConfig {
  std::int64_t n = 64;      // global interior points per side
  int steps = 200;
  std::int32_t prows = 2;
  std::int32_t pcols = 4;
};

struct HeatState {
  HeatConfig cfg;
  std::vector<std::vector<double>> final_blocks;  // per-rank result
  double max_diff_vs_serial = -1.0;
  sim::Time t_solve;
};

// Contiguous band decomposition.
std::int64_t band_lo(std::int64_t n, std::int32_t i, std::int32_t parts) {
  return i * (n / parts) + std::min<std::int64_t>(i, n % parts);
}
std::int64_t band_size(std::int64_t n, std::int32_t i, std::int32_t parts) {
  return n / parts + (i < n % parts ? 1 : 0);
}

/// Serial reference: same sweeps on the full grid.
std::vector<double> serial_solve(const HeatConfig& cfg) {
  const std::int64_t n = cfg.n;
  // (n+2)^2 with boundary ring; u[i][j], i=row (y), j=col (x).
  auto idx = [n](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * (n + 2) + j);
  };
  std::vector<double> u(static_cast<std::size_t>((n + 2) * (n + 2)), 0.0);
  std::vector<double> next = u;
  for (std::int64_t j = 0; j < n + 2; ++j) u[idx(0, j)] = kTopBoundary;
  next = u;
  for (int s = 0; s < cfg.steps; ++s) {
    for (std::int64_t i = 1; i <= n; ++i)
      for (std::int64_t j = 1; j <= n; ++j)
        next[idx(i, j)] = 0.25 * (u[idx(i - 1, j)] + u[idx(i + 1, j)] +
                                  u[idx(i, j - 1)] + u[idx(i, j + 1)]);
    std::swap(u, next);
  }
  return u;
}

sim::Task<> heat_node(nx::NxContext& ctx, HeatState& st) {
  const HeatConfig& cfg = st.cfg;
  const std::int32_t P = cfg.prows, Q = cfg.pcols;
  const int rank = ctx.rank();
  const std::int32_t pr = rank / Q, pq = rank % Q;
  const std::int64_t rows = band_size(cfg.n, pr, P);
  const std::int64_t cols = band_size(cfg.n, pq, Q);
  const std::int64_t r0 = band_lo(cfg.n, pr, P);

  // Local block with halo ring: (rows+2) x (cols+2), row-major.
  auto idx = [cols](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * (cols + 2) + j);
  };
  std::vector<double> u(static_cast<std::size_t>((rows + 2) * (cols + 2)),
                        0.0);
  // Global top boundary is hot.
  if (pr == 0)
    for (std::int64_t j = 0; j < cols + 2; ++j) u[idx(0, j)] = kTopBoundary;
  std::vector<double> next = u;

  const int north = pr > 0 ? rank - Q : -1;
  const int south = pr < P - 1 ? rank + Q : -1;
  const int west = pq > 0 ? rank - 1 : -1;
  const int east = pq < Q - 1 ? rank + 1 : -1;

  nx::Group world = nx::Group::world(ctx);
  co_await nx::barrier(ctx, world);
  const sim::Time t0 = ctx.now();

  for (int s = 0; s < cfg.steps; ++s) {
    // --- halo exchange (send all four, then receive all four) ---
    if (north >= 0) {
      std::vector<double> row(u.begin() + static_cast<std::int64_t>(idx(1, 1)),
                              u.begin() + static_cast<std::int64_t>(idx(1, 1)) + cols);
      const Bytes nbytes = nx::doubles_bytes(row.size());
      co_await ctx.send(north, kTagHalo + 0, nbytes,
                        nx::make_payload(std::move(row)));
    }
    if (south >= 0) {
      std::vector<double> row(
          u.begin() + static_cast<std::int64_t>(idx(rows, 1)),
          u.begin() + static_cast<std::int64_t>(idx(rows, 1)) + cols);
      const Bytes nbytes = nx::doubles_bytes(row.size());
      co_await ctx.send(south, kTagHalo + 1, nbytes,
                        nx::make_payload(std::move(row)));
    }
    if (west >= 0) {
      std::vector<double> col(static_cast<std::size_t>(rows));
      for (std::int64_t i = 0; i < rows; ++i) col[static_cast<std::size_t>(i)] = u[idx(i + 1, 1)];
      const Bytes nbytes = nx::doubles_bytes(col.size());
      co_await ctx.send(west, kTagHalo + 2, nbytes,
                        nx::make_payload(std::move(col)));
    }
    if (east >= 0) {
      std::vector<double> col(static_cast<std::size_t>(rows));
      for (std::int64_t i = 0; i < rows; ++i)
        col[static_cast<std::size_t>(i)] = u[idx(i + 1, cols)];
      const Bytes nbytes = nx::doubles_bytes(col.size());
      co_await ctx.send(east, kTagHalo + 3, nbytes,
                        nx::make_payload(std::move(col)));
    }
    if (south >= 0) {  // our south neighbour sent "north" (tag 0)
      nx::Message m = co_await ctx.recv(south, kTagHalo + 0);
      for (std::int64_t j = 0; j < cols; ++j)
        u[idx(rows + 1, j + 1)] = m.values()[static_cast<std::size_t>(j)];
    }
    if (north >= 0) {  // our north neighbour sent "south" (tag 1)
      nx::Message m = co_await ctx.recv(north, kTagHalo + 1);
      for (std::int64_t j = 0; j < cols; ++j)
        u[idx(0, j + 1)] = m.values()[static_cast<std::size_t>(j)];
    }
    if (east >= 0) {  // east neighbour sent "west" (tag 2)
      nx::Message m = co_await ctx.recv(east, kTagHalo + 2);
      for (std::int64_t i = 0; i < rows; ++i)
        u[idx(i + 1, cols + 1)] = m.values()[static_cast<std::size_t>(i)];
    }
    if (west >= 0) {  // west neighbour sent "east" (tag 3)
      nx::Message m = co_await ctx.recv(west, kTagHalo + 3);
      for (std::int64_t i = 0; i < rows; ++i)
        u[idx(i + 1, 0)] = m.values()[static_cast<std::size_t>(i)];
    }

    // --- Jacobi sweep over the interior ---
    for (std::int64_t i = 1; i <= rows; ++i)
      for (std::int64_t j = 1; j <= cols; ++j)
        next[idx(i, j)] = 0.25 * (u[idx(i - 1, j)] + u[idx(i + 1, j)] +
                                  u[idx(i, j - 1)] + u[idx(i, j + 1)]);
    // Re-pin the physical boundaries (they are not halos).
    if (pr == 0)
      for (std::int64_t j = 0; j < cols + 2; ++j) next[idx(0, j)] = kTopBoundary;
    std::swap(u, next);
    co_await ctx.compute(proc::Kernel::Stencil, rows, cols);
  }

  co_await nx::barrier(ctx, world);
  if (rank == 0) st.t_solve = ctx.now() - t0;

  // Verification (untimed): rank 0 gathers blocks and compares with the
  // serial reference.
  {
    std::vector<double> interior(static_cast<std::size_t>(rows * cols));
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j)
        interior[static_cast<std::size_t>(i * cols + j)] = u[idx(i + 1, j + 1)];
    const Bytes int_bytes = nx::doubles_bytes(interior.size());
    auto gathered = co_await nx::gather(ctx, world, /*root=*/0, int_bytes,
                                        nx::make_payload(std::move(interior)));
    if (rank == 0) {
      const std::vector<double> ref = serial_solve(cfg);
      double worst = 0.0;
      for (int r = 0; r < ctx.nodes(); ++r) {
        const std::int32_t rp = r / Q, rq = r % Q;
        const std::int64_t rr = band_size(cfg.n, rp, P);
        const std::int64_t rc = band_size(cfg.n, rq, Q);
        const std::int64_t gr0 = band_lo(cfg.n, rp, P);
        const std::int64_t gc0 = band_lo(cfg.n, rq, Q);
        const auto& vals = gathered[static_cast<std::size_t>(r)].values();
        for (std::int64_t i = 0; i < rr; ++i)
          for (std::int64_t j = 0; j < rc; ++j) {
            const double got = vals[static_cast<std::size_t>(i * rc + j)];
            const double want =
                ref[static_cast<std::size_t>((gr0 + i + 1) * (cfg.n + 2) +
                                             gc0 + j + 1)];
            worst = std::max(worst, std::fabs(got - want));
          }
      }
      st.max_diff_vs_serial = worst;
    }
  }
  (void)r0;
}

}  // namespace

int main(int argc, char** argv) {
  HeatConfig cfg;
  if (argc > 1) cfg.n = std::atoll(argv[1]);
  if (argc > 2) cfg.steps = std::atoi(argv[2]);

  proc::MachineConfig mc = proc::touchstone_delta();
  mc.mesh_width = cfg.pcols;
  mc.mesh_height = cfg.prows;
  nx::NxMachine machine(mc);

  HeatState st{cfg, {}, -1.0, {}};
  machine.run([&st](nx::NxContext& ctx) { return heat_node(ctx, st); });

  const auto s = machine.total_stats();
  std::printf("heat2d: %lldx%lld grid, %d sweeps on a %dx%d slice of the "
              "Delta\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.n),
              cfg.steps, cfg.prows, cfg.pcols);
  std::printf("simulated solve time : %s\n", st.t_solve.str().c_str());
  std::printf("halo messages        : %llu (%s)\n",
              static_cast<unsigned long long>(s.sends),
              format_bytes(s.bytes_sent).c_str());
  std::printf("max |parallel-serial|: %.3e %s\n", st.max_diff_vs_serial,
              st.max_diff_vs_serial < 1e-12 ? "(exact match)" : "");
  return st.max_diff_vs_serial < 1e-12 ? 0 : 1;
}

// Grand Challenge example: molecular dynamics on the Delta.
//
// Materials science was an ASTA Grand Challenge; the era's parallel MD
// codes on the Delta used the *replicated-data* (atom-decomposition)
// method: every node owns N/P atoms, computes their forces against the
// full position array, integrates them, and an allgather refreshes the
// replicas each step. Communication is one allgather per step — simple,
// and exactly why the method stopped scaling (the allgather volume grows
// with N regardless of P), pushing the field to spatial decomposition.
//
// The physics here is a 2-D Lennard-Jones fluid with cutoff, velocity
// Verlet integration, and periodic boundaries. The parallel run is
// verified against a serial reference: with atom decomposition the
// per-atom force summation order is identical, so positions match
// bitwise.
//
//   $ ./md_gc [atoms] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nx/collectives.hpp"
#include "nx/machine_runtime.hpp"
#include "proc/machine.hpp"
#include "util/rng.hpp"

using namespace hpccsim;

namespace {

struct MdConfig {
  std::int64_t n_atoms = 2048;
  int steps = 20;
  double box = 64.0;     // periodic box edge (sigma units)
  double cutoff = 2.5;   // LJ cutoff
  double dt = 0.002;
  std::uint64_t seed = 1992;
};

struct Atoms {
  std::vector<double> x, y, vx, vy;
};

Atoms init_atoms(const MdConfig& cfg) {
  // Atoms on a jittered lattice with small random velocities.
  Rng rng(cfg.seed);
  Atoms a;
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(cfg.n_atoms))));
  const double spacing = cfg.box / static_cast<double>(side);
  for (std::int64_t i = 0; i < cfg.n_atoms; ++i) {
    a.x.push_back((static_cast<double>(i % side) + 0.5) * spacing +
                  rng.uniform(-0.05, 0.05));
    a.y.push_back((static_cast<double>(i / side) + 0.5) * spacing +
                  rng.uniform(-0.05, 0.05));
    a.vx.push_back(rng.uniform(-0.1, 0.1));
    a.vy.push_back(rng.uniform(-0.1, 0.1));
  }
  return a;
}

// LJ force on atom i from the full position arrays (minimum image).
void force_on(const MdConfig& cfg, const std::vector<double>& xs,
              const std::vector<double>& ys, std::int64_t i, double& fx,
              double& fy) {
  fx = fy = 0.0;
  const double rc2 = cfg.cutoff * cfg.cutoff;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (static_cast<std::int64_t>(j) == i) continue;
    double dx = xs[static_cast<std::size_t>(i)] - xs[j];
    double dy = ys[static_cast<std::size_t>(i)] - ys[j];
    dx -= cfg.box * std::round(dx / cfg.box);
    dy -= cfg.box * std::round(dy / cfg.box);
    const double r2 = dx * dx + dy * dy;
    if (r2 >= rc2 || r2 == 0.0) continue;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    const double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
    fx += f * dx;
    fy += f * dy;
  }
}

/// Serial reference: the same physics, single address space.
Atoms serial_md(const MdConfig& cfg) {
  Atoms a = init_atoms(cfg);
  std::vector<double> fx(a.x.size()), fy(a.x.size());
  for (int s = 0; s < cfg.steps; ++s) {
    for (std::int64_t i = 0; i < cfg.n_atoms; ++i)
      force_on(cfg, a.x, a.y, i, fx[static_cast<std::size_t>(i)],
               fy[static_cast<std::size_t>(i)]);
    for (std::int64_t i = 0; i < cfg.n_atoms; ++i) {
      const auto k = static_cast<std::size_t>(i);
      a.vx[k] += cfg.dt * fx[k];
      a.vy[k] += cfg.dt * fy[k];
      a.x[k] = std::fmod(a.x[k] + cfg.dt * a.vx[k] + cfg.box, cfg.box);
      a.y[k] = std::fmod(a.y[k] + cfg.dt * a.vy[k] + cfg.box, cfg.box);
    }
  }
  return a;
}

struct MdOutcome {
  Atoms final_atoms;   // gathered at rank 0
  sim::Time elapsed;
  std::uint64_t messages = 0;
};

MdOutcome parallel_md(const MdConfig& cfg, int nodes) {
  nx::NxMachine machine(proc::touchstone_delta().with_nodes(nodes));
  MdOutcome out;
  machine.run([&cfg, &out](nx::NxContext& ctx) -> sim::Task<> {
    const int P = ctx.nodes();
    const std::int64_t per = cfg.n_atoms / P;
    const std::int64_t lo = ctx.rank() * per;
    const std::int64_t hi =
        ctx.rank() == P - 1 ? cfg.n_atoms : lo + per;
    nx::Group world = nx::Group::world(ctx);

    // Every node holds the full replicas (replicated data).
    Atoms a = init_atoms(cfg);
    std::vector<double> fx(static_cast<std::size_t>(hi - lo)),
        fy(static_cast<std::size_t>(hi - lo));

    co_await nx::barrier(ctx, world);
    const sim::Time t0 = ctx.now();

    for (int s = 0; s < cfg.steps; ++s) {
      // Forces + integration for my atoms only.
      for (std::int64_t i = lo; i < hi; ++i)
        force_on(cfg, a.x, a.y, i, fx[static_cast<std::size_t>(i - lo)],
                 fy[static_cast<std::size_t>(i - lo)]);
      // Charge: ~N/P atoms x N cutoff tests (the real O(N^2/P) loop).
      co_await ctx.compute(proc::Kernel::Dot, (hi - lo) * cfg.n_atoms / 8);
      std::vector<double> mine;
      mine.reserve(static_cast<std::size_t>(4 * (hi - lo)));
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto k = static_cast<std::size_t>(i);
        const auto m = static_cast<std::size_t>(i - lo);
        a.vx[k] += cfg.dt * fx[m];
        a.vy[k] += cfg.dt * fy[m];
        a.x[k] = std::fmod(a.x[k] + cfg.dt * a.vx[k] + cfg.box, cfg.box);
        a.y[k] = std::fmod(a.y[k] + cfg.dt * a.vy[k] + cfg.box, cfg.box);
        mine.push_back(a.x[k]);
        mine.push_back(a.y[k]);
        mine.push_back(a.vx[k]);
        mine.push_back(a.vy[k]);
      }
      co_await ctx.compute(proc::Kernel::Axpy, 4 * (hi - lo));

      // Refresh the replicas: the method's one allgather per step.
      const Bytes slice = nx::doubles_bytes(static_cast<std::size_t>(4 * per));
      auto all = co_await nx::allgather(ctx, world, slice,
                                        nx::make_payload(std::move(mine)));
      for (int r = 0; r < P; ++r) {
        const auto& vals = all[static_cast<std::size_t>(r)].values();
        const std::int64_t rlo = r * per;
        for (std::size_t m = 0; m + 3 < vals.size(); m += 4) {
          const auto k = static_cast<std::size_t>(rlo) + m / 4;
          a.x[k] = vals[m];
          a.y[k] = vals[m + 1];
          a.vx[k] = vals[m + 2];
          a.vy[k] = vals[m + 3];
        }
      }
    }

    co_await nx::barrier(ctx, world);
    if (ctx.rank() == 0) {
      out.elapsed = ctx.now() - t0;
      out.final_atoms = a;
    }
  });
  out.messages = machine.total_stats().sends;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  MdConfig cfg;
  if (argc > 1) cfg.n_atoms = std::atoll(argv[1]);
  if (argc > 2) cfg.steps = std::atoi(argv[2]);
  // Keep atom count divisible by the node counts used below.
  cfg.n_atoms -= cfg.n_atoms % 64;

  std::printf("md_gc: %lld LJ atoms, %d steps, replicated-data method\n",
              static_cast<long long>(cfg.n_atoms), cfg.steps);

  // Verification: 8-node run vs serial reference (bitwise).
  const Atoms ref = serial_md(cfg);
  const MdOutcome par = parallel_md(cfg, 8);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    worst = std::max(worst, std::fabs(ref.x[i] - par.final_atoms.x[i]));
    worst = std::max(worst, std::fabs(ref.y[i] - par.final_atoms.y[i]));
  }
  std::printf("verification  : max |parallel - serial| = %.3e %s\n", worst,
              worst == 0.0 ? "(bitwise match)" : "");

  // Scaling: the allgather keeps growing with N while compute shrinks
  // with P — the method's famous wall.
  for (const int nodes : {8, 64, 256}) {
    const MdOutcome o = parallel_md(cfg, nodes);
    std::printf("  %3d nodes: %s per %d steps (%llu msgs)\n", nodes,
                o.elapsed.str().c_str(), cfg.steps,
                static_cast<unsigned long long>(o.messages));
  }
  std::printf("expected: speedup stalls as the per-step allgather "
              "(O(N) bytes regardless of P) overtakes the O(N^2/P) "
              "force work — why MD moved to spatial decomposition\n");
  return worst == 0.0 ? 0 : 1;
}

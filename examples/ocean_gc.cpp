// Grand Challenge example: an ocean-circulation model on the full Delta.
//
// The paper's ASTA component funds "ocean and atmospheric computation
// research" as Grand Challenges. This example models the computational
// shape of a wind-driven barotropic ocean code — three prognostic 2-D
// fields, a 9-point update stencil, halo exchanges every step, and a
// global CFL reduction — at production scale (modeled execution) on all
// 528 nodes, and reports the metric oceanographers actually care about:
// simulated model-days per wall-clock day.
//
//   $ ./ocean_gc [grid] [steps]
#include <cstdio>
#include <cstdlib>

#include "nx/collectives.hpp"
#include "nx/machine_runtime.hpp"
#include "proc/machine.hpp"

using namespace hpccsim;

namespace {

struct OceanConfig {
  std::int64_t grid = 2048;   // global ocean grid (cells per side)
  int steps = 48;             // model steps simulated
  double dt_model_s = 1800.0; // 30-minute model timestep
  int fields = 3;             // u, v, eta
};

constexpr int kTagHalo = 30;

sim::Task<> ocean_node(nx::NxContext& ctx, const OceanConfig& cfg,
                       sim::Time* t_out) {
  const auto& mc = ctx.config();
  const std::int32_t P = mc.mesh_height, Q = mc.mesh_width;
  const int rank = ctx.rank();
  const std::int32_t pr = rank / Q, pq = rank % Q;
  const std::int64_t rows = cfg.grid / P + (pr < cfg.grid % P ? 1 : 0);
  const std::int64_t cols = cfg.grid / Q + (pq < cfg.grid % Q ? 1 : 0);

  const int north = pr > 0 ? rank - Q : -1;
  const int south = pr < P - 1 ? rank + Q : -1;
  const int west = pq > 0 ? rank - 1 : -1;
  const int east = pq < Q - 1 ? rank + 1 : -1;

  nx::Group world = nx::Group::world(ctx);
  co_await nx::barrier(ctx, world);
  const sim::Time t0 = ctx.now();

  for (int s = 0; s < cfg.steps; ++s) {
    // Halo exchange for each prognostic field (shape-only payloads: the
    // schedule and byte volume match the real code).
    for (int f = 0; f < cfg.fields; ++f) {
      const Bytes row_bytes = nx::doubles_bytes(static_cast<std::size_t>(cols));
      const Bytes col_bytes = nx::doubles_bytes(static_cast<std::size_t>(rows));
      if (north >= 0) co_await ctx.send(north, kTagHalo + 0, row_bytes);
      if (south >= 0) co_await ctx.send(south, kTagHalo + 1, row_bytes);
      if (west >= 0) co_await ctx.send(west, kTagHalo + 2, col_bytes);
      if (east >= 0) co_await ctx.send(east, kTagHalo + 3, col_bytes);
      if (south >= 0) (void)co_await ctx.recv(south, kTagHalo + 0);
      if (north >= 0) (void)co_await ctx.recv(north, kTagHalo + 1);
      if (east >= 0) (void)co_await ctx.recv(east, kTagHalo + 2);
      if (west >= 0) (void)co_await ctx.recv(west, kTagHalo + 3);
    }

    // 9-point update of each field: ~3 stencil sweeps of work.
    for (int f = 0; f < cfg.fields; ++f)
      co_await ctx.compute(proc::Kernel::Stencil, rows, 2 * cols);

    // Global CFL / stability check every step (as real codes do).
    co_await nx::allreduce(ctx, world, nx::ReduceOp::Max, 8, {});
  }

  co_await nx::barrier(ctx, world);
  if (rank == 0) *t_out = ctx.now() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  OceanConfig cfg;
  if (argc > 1) cfg.grid = std::atoll(argv[1]);
  if (argc > 2) cfg.steps = std::atoi(argv[2]);

  std::printf("ocean_gc: %lldx%lld global grid, %d fields, %d model steps "
              "(dt=%.0fs)\n",
              static_cast<long long>(cfg.grid),
              static_cast<long long>(cfg.grid), cfg.fields, cfg.steps,
              cfg.dt_model_s);

  for (const int nodes : {64, 256, 528}) {
    const proc::MachineConfig mc = proc::touchstone_delta().with_nodes(nodes);
    nx::NxMachine machine(mc);
    sim::Time t;
    machine.run(
        [&](nx::NxContext& ctx) { return ocean_node(ctx, cfg, &t); });

    const double model_s = cfg.dt_model_s * cfg.steps;
    const double rate = model_s / t.as_sec();  // model-seconds per second
    const auto s = machine.total_stats();
    std::printf("  %3d nodes: %s for %d steps -> %.1f model-days/day, "
                "%llu msgs, %s\n",
                nodes, t.str().c_str(), cfg.steps, rate,
                static_cast<unsigned long long>(s.sends),
                format_bytes(s.bytes_sent).c_str());
  }
  std::printf("expected shape: throughput grows with node count; the "
              "global CFL reduction and halo latency bound strong "
              "scaling\n");
  return 0;
}

// Spectral-method CAS example: solving a Poisson problem with the
// distributed FFT.
//
// The aerosciences codes the CAS consortium cared about include spectral
// solvers whose inner loop is forward-FFT -> scale by eigenvalues ->
// inverse-FFT. This example demonstrates the numerical half locally
// (solving a 1-D Poisson problem by DFT diagonalization, verified
// against direct finite differences) and then runs the *distributed*
// transform on a Delta partition, reporting the machine-level cost of
// one spectral solve step at production scale.
//
//   $ ./spectral_cas
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <vector>

#include "linalg/fft.hpp"
#include "proc/machine.hpp"

using namespace hpccsim;
using linalg::Complex;

namespace {

// Solve -u'' = f on a periodic [0, 1) grid of n points by FFT
// diagonalization; returns max error vs the analytic solution for
// f(x) = (2 pi k)^2 sin(2 pi k x).
double poisson_demo(std::size_t n, int k) {
  std::vector<Complex> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    const double w = 2.0 * std::numbers::pi * k;
    f[i] = Complex(w * w * std::sin(w * x), 0.0);
  }
  linalg::fft_radix2(f);
  // Divide by the Laplacian eigenvalues (2 pi m)^2; mode 0 is the gauge.
  for (std::size_t m = 1; m < n; ++m) {
    const double mm = m <= n / 2 ? static_cast<double>(m)
                                 : static_cast<double>(m) - static_cast<double>(n);
    const double lam = std::pow(2.0 * std::numbers::pi * mm, 2.0);
    f[m] /= lam;
  }
  f[0] = 0.0;
  linalg::fft_radix2(f, /*inverse=*/true);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    const double u = std::sin(2.0 * std::numbers::pi * k * x);
    err = std::max(err, std::abs(f[i].real() / static_cast<double>(n) - u));
  }
  return err;
}

}  // namespace

int main() {
  // --- numerics: the spectral solve is exact to rounding -------------
  const double err = poisson_demo(256, 3);
  std::printf("spectral Poisson solve (n=256, mode 3): max error %.2e %s\n",
              err, err < 1e-10 ? "(exact to rounding)" : "");

  // --- machine cost: one production-size transform per time step -----
  for (const int nodes : {64, 256, 512}) {
    nx::NxMachine machine(proc::touchstone_delta().with_nodes(nodes));
    linalg::FftConfig cfg;
    cfg.n1 = 2048;
    cfg.n2 = 2048;   // a 4M-point field
    cfg.numeric = false;
    const linalg::FftResult r = linalg::run_distributed_fft(machine, cfg);
    std::printf("  %3d-node Delta partition: 4M-point transform in %s "
                "(%.0f MFLOPS, %llu msgs)\n",
                nodes, r.elapsed.str().c_str(), r.mflops,
                static_cast<unsigned long long>(r.messages));
  }
  std::printf("a spectral CFD step needs several such transforms: the "
              "global transpose is why these codes are network-bound\n");
  return err < 1e-10 ? 0 : 1;
}

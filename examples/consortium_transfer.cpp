// Consortium scenario: a researcher's day on the 1992 network.
//
// A Purdue aerodynamicist runs a CAS job on the Delta at Caltech, then
// pulls the 40 MB flow-field result home over NSFnet, while a JPL
// collaborator grabs the same file over the CASA HIPPI/SONET testbed.
// The example shows why the paper's network figure is drawn the way it
// is: in 1992, where you sat on the hierarchy determined whether remote
// supercomputing was interactive or an overnight batch affair.
//
//   $ ./consortium_transfer [megabytes]
#include <cstdio>
#include <cstdlib>

#include "util/units.hpp"
#include "wan/consortium.hpp"

using namespace hpccsim;

namespace {

void report(const wan::Wan& net, const char* who, wan::SiteId from,
            wan::SiteId to, Bytes bytes) {
  const auto r = net.transfer(from, to, bytes);
  if (!r) {
    std::printf("%-28s unreachable!\n", who);
    return;
  }
  std::string route;
  for (std::size_t i = 0; i < r->path.size(); ++i) {
    if (i) route += " -> ";
    route += net.site_name(r->path[i]);
  }
  std::printf("%-28s %10s  (bottleneck %-11s via %s)\n", who,
              r->duration.str().c_str(), format_rate(r->bottleneck).c_str(),
              route.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Bytes mb = argc > 1 ? static_cast<Bytes>(std::atoll(argv[1])) : 40;
  const Bytes bytes = mb * 1000 * 1000;

  const wan::Wan net = wan::consortium_network();
  const wan::SiteId delta = net.site_by_name("Caltech-Delta");

  std::printf("pulling a %llu MB result file off the Touchstone Delta:\n\n",
              static_cast<unsigned long long>(mb));
  report(net, "JPL (CASA HIPPI/SONET)", delta, net.site_by_name("JPL"), bytes);
  report(net, "Los Alamos (CASA)", delta, net.site_by_name("Los-Alamos"),
         bytes);
  report(net, "NASA Ames (T1)", delta, net.site_by_name("NASA-Ames"), bytes);
  report(net, "CRPC / Rice (T1 via T3)", delta, net.site_by_name("CRPC-Rice"),
         bytes);
  report(net, "Purdue (regional T1)", delta, net.site_by_name("Purdue"),
         bytes);
  report(net, "Delaware (56 kbps tail)", delta, net.site_by_name("Delaware"),
         bytes);

  std::printf("\nsteering data (4 kB status packet) round-trip flavour:\n\n");
  report(net, "JPL", delta, net.site_by_name("JPL"), 4096);
  report(net, "Purdue", delta, net.site_by_name("Purdue"), 4096);
  report(net, "Delaware", delta, net.site_by_name("Delaware"), 4096);
  return 0;
}

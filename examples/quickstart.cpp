// Quickstart: the smallest complete hpccsim program.
//
// Builds a 16-node slice of the Touchstone Delta, runs an SPMD program
// on it (point-to-point ring + a global reduction), and prints what the
// machine did. Start here, then read examples/linpack_delta.cpp for the
// paper's headline experiment.
//
//   $ ./quickstart
#include <cstdio>

#include "nx/collectives.hpp"
#include "nx/machine_runtime.hpp"
#include "proc/machine.hpp"

using namespace hpccsim;

namespace {

// Every node passes a token around a ring, then everyone computes a
// global sum. This is the "hello world" of message passing.
sim::Task<> ring_program(nx::NxContext& ctx) {
  const int right = (ctx.rank() + 1) % ctx.nodes();
  const int left = (ctx.rank() + ctx.nodes() - 1) % ctx.nodes();
  constexpr int kTag = 1;

  if (ctx.rank() == 0) {
    // Start the token, then wait for it to come back around.
    co_await ctx.send(right, kTag, /*bytes=*/8, nx::payload_of(1.0));
    nx::Message token = co_await ctx.recv(left, kTag);
    std::printf("rank 0: token returned with value %.0f at t=%s\n",
                token.values().at(0), ctx.now().str().c_str());
  } else {
    nx::Message token = co_await ctx.recv(left, kTag);
    const double hops = token.values().at(0) + 1.0;
    co_await ctx.send(right, kTag, 8, nx::payload_of(hops));
  }

  // Some local "work" (charged against the i860 kernel model) ...
  co_await ctx.compute(proc::Kernel::Gemm, 64, 64, 64);

  // ... then a global sum of ranks.
  nx::Group world = nx::Group::world(ctx);
  nx::Message sum = co_await nx::allreduce(
      ctx, world, nx::ReduceOp::Sum, 8, nx::payload_of(double(ctx.rank())));
  if (ctx.rank() == 0)
    std::printf("rank 0: allreduce(ranks) = %.0f (expect %d)\n",
                sum.values().at(0), ctx.nodes() * (ctx.nodes() - 1) / 2);
}

}  // namespace

int main() {
  // A 16-node slice of the Delta: same i860 nodes, same mesh links.
  const proc::MachineConfig mc = proc::touchstone_delta().with_nodes(16);
  nx::NxMachine machine(mc);

  std::printf("machine: %s (%d nodes, peak %s)\n", mc.name.c_str(),
              machine.nodes(), format_flops(mc.machine_peak()).c_str());

  const sim::Time elapsed = machine.run(ring_program);

  const nx::NodeStats s = machine.total_stats();
  std::printf("simulated time : %s\n", elapsed.str().c_str());
  std::printf("messages       : %llu (%s)\n",
              static_cast<unsigned long long>(s.sends),
              format_bytes(s.bytes_sent).c_str());
  std::printf("flops charged  : %llu\n",
              static_cast<unsigned long long>(s.flops_charged));
  std::printf("host events    : %llu\n",
              static_cast<unsigned long long>(
                  machine.engine().events_processed()));
  return 0;
}

// The paper's hero run on a machine that actually fails.
//
// The 13-GFLOPS order-25,000 LINPACK run takes ~813 simulated seconds
// on the 528-node Delta; a production campaign chains many of them. On
// real hardware of the era nodes died mid-campaign, and the only
// defence was coordinated checkpointing through the CFS — at a few
// MB/s of aggregate disk. This example runs such a campaign under
// seeded fault injection with checkpoint/restart at the Daly-optimal
// interval, and reports what the machine's 13-GFLOPS headline turns
// into once failures and checkpoint overhead take their cut.
//
//   $ ./linpack_checkpointed --runs 10 --mtbf-days 15 \
//       --trace trace.json   # Chrome trace: open in ui.perfetto.dev
//       --json metrics.json  # machine-readable metrics
#include <cmath>
#include <cstdio>

#include "fault/checkpoint.hpp"
#include "fault/injector.hpp"
#include "fault/stats.hpp"
#include "io/cfs.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/machine.hpp"
#include "util/cli.hpp"

using namespace hpccsim;
using sim::Time;

int main(int argc, char** argv) {
  ArgParser args("linpack_checkpointed",
                 "a LINPACK campaign under fault injection with "
                 "checkpoint/restart through the CFS");
  args.add_option("runs", "LINPACK runs in the campaign", "10");
  args.add_option("mtbf-days", "per-node MTBF in days", "15");
  args.add_trace_option();
  args.add_json_option();
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.flag("help")) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  const int runs = static_cast<int>(args.integer("runs"));
  const double mtbf_days = args.real("mtbf-days");

  const proc::MachineConfig mc = proc::touchstone_delta();
  const double lu_seconds = 813.0;  // the modeled order-25,000 LU
  const Time work = Time::sec(lu_seconds * runs);
  const Bytes matrix = 25000ULL * 25000ULL * 8;  // 5 GB
  const Bytes per_node = matrix / static_cast<Bytes>(mc.node_count());

  nx::NxMachine machine(mc);

  // Opt-in Chrome tracing: checkpoint epochs, crashes, and rollbacks
  // land on per-rank and machine-control tracks.
  obs::TraceWriter trace;
  if (!args.trace_path().empty()) machine.set_trace_writer(&trace);

  fault::FaultConfig fc;
  fc.seed = 1992;
  fc.node_mtbf = Time::sec(mtbf_days * 86400.0);
  fc.node_repair = Time::sec(300.0);
  fc.horizon = Time::sec(work.as_sec() * 6.0);
  fault::FaultInjector injector(machine, fc);

  io::Cfs cfs(machine);  // disks on the mesh's east edge column
  const Time c_est = cfs.estimate_write_time(matrix);
  const Time mtbf_machine =
      Time::sec(fc.node_mtbf.as_sec() / mc.node_count());
  const Time interval = fault::daly_interval(c_est, mtbf_machine);

  fault::CheckpointConfig cc;
  cc.total_work = work;
  cc.interval = interval;
  cc.bytes_per_node = per_node;
  fault::CheckpointedRun run(machine, injector, &cfs, cc);
  run.execute();
  const fault::WasteReport& r = run.report();

  std::printf("machine        : %s, %d nodes, %d CFS disks\n",
              mc.name.c_str(), mc.node_count(), cfs.disk_count());
  std::printf("campaign       : %d LINPACK runs = %.0f s of work\n", runs,
              work.as_sec());
  std::printf("faults         : per-node MTBF %.0f days -> machine MTBF "
              "%.0f s; %llu crashes hit the campaign\n",
              mtbf_days, mtbf_machine.as_sec(),
              static_cast<unsigned long long>(r.crashes));
  std::printf("checkpointing  : %s/node every %.0f s (Daly; est. C = %.0f "
              "s via CFS)\n",
              format_bytes(per_node).c_str(), interval.as_sec(),
              c_est.as_sec());
  std::printf("\n%s\n", r.str().c_str());

  const double headline = 13.0;  // GFLOPS the paper claims for one run
  std::printf("efficiency     : %.1f%% of the machine's time was LINPACK\n",
              100.0 * r.efficiency());
  std::printf("effective rate : %.1f GFLOPS sustained (headline %.1f)\n",
              headline * r.efficiency(), headline);

  // Without checkpointing a crash restarts the whole campaign; for
  // exponential failures the expected completion is M (e^{W/M} - 1).
  const double m = mtbf_machine.as_sec();
  const double naive = m * (std::exp(work.as_sec() / m) - 1.0);
  std::printf("no-checkpoint  : expected completion %.2e s (%.1fx the "
              "checkpointed run)\n",
              naive, naive / r.elapsed.as_sec());

  if (!args.trace_path().empty()) {
    if (trace.write_file(args.trace_path()))
      std::printf("trace          : %zu events -> %s (load in "
                  "ui.perfetto.dev)\n",
                  trace.event_count(), args.trace_path().c_str());
  }

  obs::BenchMetrics bm("linpack_checkpointed");
  bm.config("runs", static_cast<std::int64_t>(runs));
  bm.config("mtbf_days", mtbf_days);
  bm.add_sim_time(r.elapsed);
  bm.metric("crashes", static_cast<std::int64_t>(r.crashes));
  bm.metric("efficiency", r.efficiency());
  obs::Registry reg;
  injector.export_counters(reg);
  cfs.export_counters(reg);
  run.export_counters(reg);
  reg.merge(machine.snapshot_counters());
  bm.attach_counters(reg);
  bm.write_file(args.json_path());
  return 0;
}

// The paper's headline experiment, as a user would run it:
//
//   "13 GFLOPS SPEED OBTAINED ON A LINPAC BENCHMARK CODE OF ORDER
//    25,000 BY 25,000" — Concurrent Supercomputer Consortium slide.
//
// Runs the distributed LU twice: first a small *numeric* problem whose
// solution is verified against the HPL residual check (proving the
// algorithm is a real solver, not a timing script), then the modeled
// order-25,000 run on the full 528-node machine.
//
//   $ ./linpack_delta [n]
#include <cstdio>
#include <cstdlib>

#include "linalg/distlu.hpp"
#include "proc/machine.hpp"

using namespace hpccsim;

int main(int argc, char** argv) {
  const std::int64_t big_n = argc > 1 ? std::atoll(argv[1]) : 25000;

  // --- 1. prove correctness on a numeric problem -----------------------
  {
    proc::MachineConfig mc = proc::touchstone_delta();
    mc.mesh_width = 4;
    mc.mesh_height = 2;  // an 8-node corner of the machine
    nx::NxMachine machine(mc);
    linalg::LuConfig cfg = linalg::lu_config_for(machine, 96, 16,
                                                 linalg::ExecMode::Numeric);
    const linalg::LuResult r = linalg::run_distributed_lu(machine, cfg);
    std::printf("numeric check : n=96 on 2x4 grid, HPL residual = %.3f "
                "(pass < ~16)\n",
                r.residual.value());
  }

  // --- 2. the paper's run ----------------------------------------------
  {
    const proc::MachineConfig mc = proc::touchstone_delta();
    nx::NxMachine machine(mc);
    linalg::LuConfig cfg = linalg::lu_config_for(machine, big_n, 64);
    const linalg::LuResult r = linalg::run_distributed_lu(machine, cfg);

    std::printf("machine       : %s, %d nodes, peak %.1f GFLOPS\n",
                mc.name.c_str(), mc.node_count(), mc.machine_peak().gflops());
    std::printf("LINPACK order : %lld, block size %lld\n",
                static_cast<long long>(cfg.n), static_cast<long long>(cfg.nb));
    std::printf("simulated time: %s\n", r.elapsed.str().c_str());
    std::printf("performance   : %.2f GFLOPS (%.1f%% of peak)\n", r.gflops,
                r.gflops / mc.machine_peak().gflops() * 100.0);
    std::printf("communication : %llu messages, %.2f GB\n",
                static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.bytes_moved) / 1e9);
    if (big_n == 25000)
      std::printf("paper claims  : 13 GFLOPS at this order -> %s\n",
                  r.gflops > 10.0 && r.gflops < 16.0 ? "reproduced"
                                                     : "MISMATCH");
  }
  return 0;
}

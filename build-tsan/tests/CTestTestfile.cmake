# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mesh_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/proc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nx_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/linalg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/wan_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/hpcc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sched_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/exhibits_test[1]_include.cmake")
